"""Tests for the optimized plane sweep: index, axis/direction, sweeping."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pairs import Item
from repro.core.planesweep import (
    PlaneSweeper,
    choose_axis,
    choose_direction,
    static_cutoff,
    sweeping_index,
    table1_sweeping_index,
)
from repro.core.stats import Instruments
from repro.geometry.distances import min_distance
from repro.geometry.rect import Rect
from repro.rtree.tree import RTree, TreeAccessor
from repro.storage.disk import SimulatedDisk


def make_instruments() -> Instruments:
    disk = SimulatedDisk()
    dummy = RTree.bulk_load([(Rect(0, 0, 1, 1), 0)])
    acc = TreeAccessor(dummy, disk, 4096)
    return Instruments(disk, acc, acc)


def items_from_points(points: list[tuple[float, float]]) -> list[Item]:
    return [Item.object(Rect.from_point(x, y), i) for i, (x, y) in enumerate(points)]


# ----------------------------------------------------------------------
# Sweeping index
# ----------------------------------------------------------------------


class TestSweepingIndex:
    def test_zero_cutoff(self):
        assert sweeping_index(Rect(0, 0, 1, 1), Rect(5, 0, 6, 1), 0, 0.0) == 0.0

    def test_below_gap_is_zero(self):
        # alpha = 4; cutoff below it never reaches s
        assert sweeping_index(Rect(0, 0, 1, 1), Rect(5, 0, 6, 1), 0, 3.0) == 0.0

    def test_huge_cutoff_saturates_at_one(self):
        r, s = Rect(0, 0, 2, 1), Rect(5, 0, 8, 1)
        # every child of r sees all of s (fraction 1); s's forward windows
        # never reach r, so the second term is zero (paper Section 3.2)
        assert math.isclose(sweeping_index(r, s, 0, 1000.0), 1.0)

    def test_monotone_in_cutoff(self):
        r, s = Rect(0, 0, 4, 1), Rect(2, 0, 9, 1)
        values = [sweeping_index(r, s, 0, c) for c in (0.5, 1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_overlapping_nodes_positive_both_terms(self):
        r, s = Rect(0, 0, 4, 4), Rect(1, 1, 3, 3)
        assert sweeping_index(r, s, 0, 1.0) > 0.0

    def test_matches_closed_form_hand_case(self):
        # r = [0,2], s = [5,8], cutoff 6, gap alpha = 3: the raw integral
        # of clamp(u, 0, 3) for u in [1, 3] is (9 - 1)/2 = 4; divide by
        # |s| = 3 and normalize by |r| = 2.
        r, s = Rect(0, 0, 2, 1), Rect(5, 0, 8, 1)
        assert math.isclose(sweeping_index(r, s, 0, 6.0), 4.0 / 3.0 / 2.0)

    @settings(max_examples=200, deadline=None)
    @given(
        st.floats(0.1, 50),   # |r|
        st.floats(0.1, 50),   # |s|
        st.floats(0.0, 20),   # gap alpha
        st.floats(0.01, 200),  # cutoff
    )
    def test_agrees_with_table1_closed_form(self, len_r, len_s, alpha, cutoff):
        r = Rect(0.0, 0.0, len_r, 1.0)
        s = Rect(len_r + alpha, 0.0, len_r + alpha + len_s, 1.0)
        exact = sweeping_index(r, s, 0, cutoff)
        closed = table1_sweeping_index(r, s, 0, cutoff)
        # the exact index normalizes the Table 1 integral by |r|
        assert math.isclose(exact, closed / len_r, rel_tol=1e-9, abs_tol=1e-9)

    def test_table1_rejects_overlap(self):
        with pytest.raises(ValueError):
            table1_sweeping_index(Rect(0, 0, 2, 1), Rect(1, 0, 3, 1), 0, 1.0)

    # Extents are either exactly degenerate (0.0) or bounded away from
    # the subnormal regime: mixing a ~1e-160 extent with O(1) gaps makes
    # *any* algebraic rearrangement of Equation (2) lose all precision
    # after normalization, so that regime is outside the agreement
    # contract (the index only steers axis choice there anyway).
    _extent = st.one_of(st.just(0.0), st.floats(1e-3, 50))

    @settings(max_examples=200, deadline=None)
    @given(
        _extent,               # |r| (0 allowed: degenerate sweeping node)
        _extent,               # |s| (0 allowed: degenerate point target)
        st.floats(0.001, 20),  # gap alpha (strictly separated)
        st.floats(0.01, 200),  # cutoff
    )
    def test_closed_form_route_on_random_nonoverlapping(
        self, len_r, len_s, alpha, cutoff
    ):
        """The choose_axis fast path must agree with the exact integrator.

        Random non-overlapping (possibly degenerate) rects: the routed
        closed form — Table 1 over the leading node, trailing term zero —
        is what the exact Equation (2) integration reduces to.
        """
        from repro.core.planesweep import _axis_index_and_cost

        r = Rect(0.0, 0.0, len_r, 1.0)
        s = Rect(len_r + alpha, 0.0, len_r + alpha + len_s, 1.0)
        exact = sweeping_index(r, s, 0, cutoff)
        routed, cost = _axis_index_and_cost(r, s, 0, cutoff)
        assert math.isclose(routed, exact, rel_tol=1e-9, abs_tol=1e-9)
        from repro.core.planesweep import CLOSED_FORM_AXIS_COST

        assert cost == CLOSED_FORM_AXIS_COST

    def test_table1_degenerate_s_limit(self):
        # Point target at gap 3 from r = [0, 2]: positions of the sweep
        # window containing the point are min(|r|, cutoff - alpha).
        r, s = Rect(0, 0, 2, 1), Rect(5, 0, 5, 1)
        assert table1_sweeping_index(r, s, 0, 2.0) == 0.0   # below the gap
        assert table1_sweeping_index(r, s, 0, 4.0) == 1.0   # partial ramp
        assert table1_sweeping_index(r, s, 0, 50.0) == 2.0  # saturated at |r|
        # and it matches the exact integrator (normalized by |r|)
        for cutoff in (2.0, 3.5, 4.0, 6.0, 50.0):
            exact = sweeping_index(r, s, 0, cutoff)
            assert math.isclose(
                exact, table1_sweeping_index(r, s, 0, cutoff) / 2.0, abs_tol=1e-12
            )


def _numeric_index_term(a_lo, a_hi, b_lo, b_hi, cutoff, steps=20_000):
    """Midpoint-rule integration of Equation (2)'s integrand."""
    if cutoff <= 0.0 or a_hi <= a_lo:
        return 0.0
    width = b_hi - b_lo
    total = 0.0
    h = (a_hi - a_lo) / steps
    for i in range(steps):
        t = a_lo + (i + 0.5) * h
        overlap = min(t + cutoff, b_hi) - max(t, b_lo)
        if width > 0:
            total += max(0.0, overlap) / width * h
        else:
            # Degenerate b: indicator of the window containing the point.
            total += h if b_lo - cutoff <= t <= b_lo else 0.0
    return total


class TestIndexTermNumericRegression:
    """Regression: the analytic terms must match numeric integration,
    including every degenerate-extent combination (the incommensurability
    class of bug the normalization exists to prevent)."""

    CASES = [
        # (a_lo, a_hi, b_lo, b_hi, cutoff)
        (0.0, 2.0, 5.0, 8.0, 6.0),     # disjoint, regular
        (0.0, 4.0, 2.0, 9.0, 1.5),     # overlapping
        (0.0, 4.0, 1.0, 3.0, 0.7),     # containment
        (0.0, 2.0, 5.0, 5.0, 6.0),     # degenerate b, reachable
        (0.0, 2.0, 5.0, 5.0, 1.0),     # degenerate b, out of reach
        (1.0, 1.0, 3.0, 7.0, 3.0),     # degenerate a inside reach
        (1.0, 1.0, 3.0, 7.0, 1.0),     # degenerate a out of reach
        (2.0, 2.0, 2.0, 2.0, 1.0),     # both degenerate, coincident
        (2.0, 2.0, 4.0, 4.0, 1.0),     # both degenerate, apart
        (0.0, 10.0, 3.0, 3.0, 2.0),    # degenerate b inside a's span
    ]

    @pytest.mark.parametrize("a_lo,a_hi,b_lo,b_hi,cutoff", CASES)
    def test_index_term_matches_numeric(self, a_lo, a_hi, b_lo, b_hi, cutoff):
        from repro.core.planesweep import _index_term

        analytic = _index_term(a_lo, a_hi, b_lo, b_hi, cutoff)
        numeric = _numeric_index_term(a_lo, a_hi, b_lo, b_hi, cutoff)
        assert math.isclose(analytic, numeric, rel_tol=1e-3, abs_tol=1e-3)

    @pytest.mark.parametrize("a_lo,a_hi,b_lo,b_hi,cutoff", CASES)
    def test_normalized_term_is_a_fraction(self, a_lo, a_hi, b_lo, b_hi, cutoff):
        """Both branches of _normalized_term return commensurable values:
        an expected *fraction* in [0, 1], never an un-normalized length."""
        from repro.core.planesweep import _normalized_term

        value = _normalized_term(a_lo, a_hi, b_lo, b_hi, cutoff)
        assert 0.0 <= value <= 1.0 + 1e-12

    @settings(max_examples=150, deadline=None)
    @given(
        st.floats(0, 10), st.floats(0, 10),
        st.floats(-5, 15), st.floats(0, 10),
        st.floats(0.01, 40),
    )
    def test_random_terms_match_numeric(self, a_lo, a_len, b_lo, b_len, cutoff):
        from repro.core.planesweep import _index_term

        a_hi, b_hi = a_lo + a_len, b_lo + b_len
        analytic = _index_term(a_lo, a_hi, b_lo, b_hi, cutoff)
        numeric = _numeric_index_term(a_lo, a_hi, b_lo, b_hi, cutoff, steps=4000)
        assert math.isclose(analytic, numeric, rel_tol=5e-3, abs_tol=5e-3)


# ----------------------------------------------------------------------
# Axis and direction selection
# ----------------------------------------------------------------------


class TestAxisChoice:
    def test_prefers_spread_axis_for_infinite_cutoff(self):
        instr = make_instruments()
        r, s = Rect(0, 0, 1, 100), Rect(2, 0, 3, 100)
        assert choose_axis(instr, r, s, math.inf) == 1

    def test_prefers_low_index_axis(self):
        instr = make_instruments()
        # Wide spread along y, tight along x: y windows overlap less.
        r, s = Rect(0, 0, 2, 50), Rect(1, 0, 3, 50)
        assert choose_axis(instr, r, s, 1.0) == 1

    def test_paper_figure5_scenario(self):
        # Children spread widely along y; x distances all within cutoff.
        instr = make_instruments()
        r = Rect(0.0, 0.0, 4.0, 100.0)
        s = Rect(1.0, 0.0, 5.0, 100.0)
        assert choose_axis(instr, r, s, 10.0) == 1


class TestDirectionChoice:
    def test_intersecting_case(self):
        # Fig 7(a): intervals [0,3] (left) / [3,4] / [4,6] (right)
        assert choose_direction(Rect(0, 0, 4, 1), Rect(3, 0, 6, 1), 0) is False
        # left interval [0,1] shorter than right [3,6] -> forward
        assert choose_direction(Rect(0, 0, 3, 1), Rect(1, 0, 6, 1), 0) is True

    def test_disjoint_case(self):
        # Fig 7(b): left node shorter -> forward
        assert choose_direction(Rect(0, 0, 1, 1), Rect(5, 0, 9, 1), 0) is True
        assert choose_direction(Rect(0, 0, 4, 1), Rect(5, 0, 6, 1), 0) is False

    def test_containment_case(self):
        # Fig 7(c): both outer intervals from the big node
        assert choose_direction(Rect(0, 0, 10, 1), Rect(1, 0, 4, 1), 0) is True
        assert choose_direction(Rect(0, 0, 10, 1), Rect(7, 0, 9, 1), 0) is False

    def test_tie_is_forward(self):
        assert choose_direction(Rect(0, 0, 2, 1), Rect(0, 0, 2, 1), 0) is True


# ----------------------------------------------------------------------
# The sweep itself
# ----------------------------------------------------------------------


def run_expand(
    items_r: list[Item],
    items_s: list[Item],
    cutoff: float,
    optimize_axis=True,
    optimize_direction=True,
    keep_record=False,
    real_cutoff: float | None = None,
):
    instr = make_instruments()
    sweeper = PlaneSweeper(instr, optimize_axis, optimize_direction)
    emitted: list[tuple[int, int, float]] = []
    parent_r = Item.node(Rect.union_of([i.rect for i in items_r]), 0, 1)
    parent_s = Item.node(Rect.union_of([i.rect for i in items_s]), 0, 1)
    record = sweeper.expand(
        parent_r,
        parent_s,
        items_r,
        items_s,
        axis_limit=static_cutoff(cutoff),
        real_limit=static_cutoff(real_cutoff if real_cutoff is not None else cutoff),
        emit=lambda a, b, d: emitted.append((a.ref, b.ref, d)),
        keep_record=keep_record,
        record_real_cutoff=real_cutoff,
    )
    return emitted, record, sweeper, instr


def brute_pairs(items_r, items_s, cutoff):
    return {
        (a.ref, b.ref)
        for a, b in itertools.product(items_r, items_s)
        if min_distance(a.rect, b.rect) <= cutoff
    }


@pytest.mark.parametrize("optimize_axis", [False, True])
@pytest.mark.parametrize("optimize_direction", [False, True])
def test_sweep_finds_exactly_pairs_within_cutoff(optimize_axis, optimize_direction):
    rng = random.Random(42)
    items_r = items_from_points([(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(40)])
    items_s = items_from_points([(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(30)])
    for cutoff in (0.0, 5.0, 20.0, 200.0):
        emitted, _, _, _ = run_expand(
            items_r, items_s, cutoff, optimize_axis, optimize_direction
        )
        got = {(a, b) for a, b, _ in emitted}
        assert got == brute_pairs(items_r, items_s, cutoff)
        assert len(emitted) == len(got), "pair emitted twice"


def test_sweep_distances_are_correct():
    rng = random.Random(1)
    items_r = items_from_points([(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(20)])
    items_s = items_from_points([(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(20)])
    emitted, _, _, _ = run_expand(items_r, items_s, 30.0)
    for a, b, d in emitted:
        assert math.isclose(
            d, min_distance(items_r[a].rect, items_s[b].rect), abs_tol=1e-12
        )


def test_sweep_counts_axis_and_real_computations():
    rng = random.Random(2)
    items_r = items_from_points([(rng.uniform(0, 10), 0.0) for _ in range(10)])
    items_s = items_from_points([(rng.uniform(0, 10), 0.0) for _ in range(10)])
    _, _, _, instr = run_expand(items_r, items_s, 100.0)
    assert instr.axis_distance_computations >= instr.real_distance_computations > 0


def test_emit_keeps_r_side_first():
    items_r = items_from_points([(0.0, 0.0)])
    items_s = items_from_points([(1.0, 0.0), (-1.0, 0.0)])
    emitted, _, _, _ = run_expand(items_r, items_s, 10.0)
    assert {(a, b) for a, b, _ in emitted} == {(0, 0), (0, 1)}


class TestCompensation:
    def _compensate(self, record, sweeper, cutoff, recheck_cutoff=None):
        emitted: list[tuple[int, int, float]] = []
        sweeper.compensate(
            record,
            axis_limit=static_cutoff(cutoff),
            real_limit=static_cutoff(cutoff),
            emit=lambda a, b, d: emitted.append((a.ref, b.ref, d)),
            new_record_real_cutoff=recheck_cutoff,
        )
        return emitted

    def test_resume_recovers_exactly_the_skipped_pairs(self):
        rng = random.Random(3)
        items_r = items_from_points(
            [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(30)]
        )
        items_s = items_from_points(
            [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(25)]
        )
        small, large = 8.0, 25.0
        emitted1, record, sweeper, _ = run_expand(
            items_r, items_s, small, keep_record=True, real_cutoff=None
        )
        # Stage one used a safe real filter (== axis cutoff here), so mark
        # the in-window pruning as unsafe to exercise the recheck path:
        record.real_cutoff = small
        emitted2 = self._compensate(record, sweeper, large, recheck_cutoff=large)
        got = {(a, b) for a, b, _ in emitted1} | {(a, b) for a, b, _ in emitted2}
        assert got == brute_pairs(items_r, items_s, large)
        overlap = {(a, b) for a, b, _ in emitted1} & {(a, b) for a, b, _ in emitted2}
        assert not overlap, "compensation re-emitted a pair"

    def test_multi_stage_compensation(self):
        rng = random.Random(4)
        items_r = items_from_points(
            [(rng.uniform(0, 60), rng.uniform(0, 60)) for _ in range(20)]
        )
        items_s = items_from_points(
            [(rng.uniform(0, 60), rng.uniform(0, 60)) for _ in range(20)]
        )
        cutoffs = [3.0, 10.0, 40.0, 200.0]
        emitted_all: set[tuple[int, int]] = set()
        emitted1, record, sweeper, _ = run_expand(
            items_r, items_s, cutoffs[0], keep_record=True, real_cutoff=cutoffs[0]
        )
        emitted_all |= {(a, b) for a, b, _ in emitted1}
        for cutoff in cutoffs[1:]:
            emitted = self._compensate(record, sweeper, cutoff, recheck_cutoff=cutoff)
            new = {(a, b) for a, b, _ in emitted}
            assert not (new & emitted_all), "duplicate across stages"
            emitted_all |= new
            assert emitted_all == brute_pairs(items_r, items_s, cutoff)

    def test_fully_swept_detection(self):
        items_r = items_from_points([(0.0, 0.0), (1.0, 0.0)])
        items_s = items_from_points([(0.5, 0.0), (2.0, 0.0)])
        _, record, sweeper, _ = run_expand(
            items_r, items_s, 100.0, keep_record=True
        )
        assert record.fully_swept()
        _, record2, _, _ = run_expand(
            items_r, items_s, 0.6, keep_record=True
        )
        assert not record2.fully_swept()


def test_fixed_sweep_is_x_axis_forward():
    # With optimizations off, pairs along y should not benefit from the
    # axis cutoff at all: everything within x-cutoff gets a real check.
    items_r = items_from_points([(0.0, y) for y in range(10)])
    items_s = items_from_points([(0.5, y + 1000.0) for y in range(10)])
    _, _, _, instr = run_expand(
        items_r, items_s, 5.0, optimize_axis=False, optimize_direction=False
    )
    fixed_reals = instr.real_distance_computations
    _, _, _, instr2 = run_expand(items_r, items_s, 5.0)
    assert instr2.real_distance_computations < fixed_reals
