"""Direct coverage for the parallel merge layer (k-way merge, dedupe,
shared bounds).

The merge is the one place where every parallel executor's output
converges; its ordering and dedupe behavior is what makes the parallel
result stream byte-identical to the sequential one, so it gets tested
on its own, not just through whole-join runs.
"""

import math

import pytest

from repro.core.pairs import ResultPair
from repro.parallel.merge import (
    GlobalBound,
    PairwiseBound,
    dedupe_sorted,
    merge_sorted,
    merge_topk,
    pair_key,
)


def _run(*triples):
    return [ResultPair(d, r, s) for d, r, s in triples]


class TestMergeSorted:
    def test_k_way_merge_interleaves_runs(self):
        runs = [
            _run((1.0, 1, 1), (4.0, 4, 4)),
            _run((2.0, 2, 2), (5.0, 5, 5)),
            _run((3.0, 3, 3)),
        ]
        merged = list(merge_sorted(runs))
        assert [p.distance for p in merged] == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_duplicate_distances_order_by_ref_ids(self):
        # Three pairs at the exact same distance, spread across runs:
        # the merged order must be (distance, ref_r, ref_s), regardless
        # of which run they came from.
        runs = [
            _run((2.0, 9, 1)),
            _run((2.0, 3, 7)),
            _run((2.0, 3, 2), (2.0, 9, 0)),
        ]
        merged = list(merge_sorted(runs))
        assert merged == _run((2.0, 3, 2), (2.0, 3, 7), (2.0, 9, 0), (2.0, 9, 1))

    def test_exact_tie_ordering_is_run_count_invariant(self):
        # The same result set split 2 ways and 4 ways merges identically.
        pairs = _run(
            (1.0, 5, 5), (1.0, 5, 6), (1.5, 0, 0), (1.5, 0, 1),
            (1.5, 1, 0), (2.0, 2, 2), (2.5, 3, 3), (2.5, 3, 4),
        )
        two_way = [sorted(pairs[0::2], key=pair_key), sorted(pairs[1::2], key=pair_key)]
        four_way = [sorted(pairs[i::4], key=pair_key) for i in range(4)]
        assert list(merge_sorted(two_way)) == list(merge_sorted(four_way))

    def test_empty_runs_are_harmless(self):
        assert list(merge_sorted([[], _run((1.0, 0, 0)), []])) == _run((1.0, 0, 0))


class TestDedupe:
    def test_dedupe_drops_adjacent_exact_repeats(self):
        stream = _run((1.0, 0, 0), (1.0, 0, 0), (2.0, 1, 1), (2.0, 1, 1), (2.0, 1, 2))
        assert list(dedupe_sorted(stream)) == _run((1.0, 0, 0), (2.0, 1, 1), (2.0, 1, 2))

    def test_dedupe_keeps_distance_ties_of_distinct_pairs(self):
        # Same distance, different object ids: both must survive.
        stream = _run((3.0, 1, 2), (3.0, 1, 3), (3.0, 2, 2))
        assert list(dedupe_sorted(stream)) == stream

    def test_merge_topk_dedupe_across_runs(self):
        # The same pair discovered by two workers (boundary replication)
        # must not occupy two of the k result slots.
        runs = [
            _run((1.0, 0, 0), (2.0, 1, 1)),
            _run((1.0, 0, 0), (3.0, 2, 2)),
        ]
        assert merge_topk(runs, 3, dedupe=True) == _run(
            (1.0, 0, 0), (2.0, 1, 1), (3.0, 2, 2)
        )
        # Without dedupe the duplicate wins a slot — the flag matters.
        assert merge_topk(runs, 3) == _run((1.0, 0, 0), (1.0, 0, 0), (2.0, 1, 1))

    def test_merge_topk_truncates_to_k(self):
        runs = [_run((1.0, 0, 0), (2.0, 1, 1), (3.0, 2, 2))]
        assert len(merge_topk(runs, 2)) == 2


class TestGlobalBound:
    def test_cutoff_inf_until_k_offers(self):
        bound = GlobalBound(3)
        bound.offer([5.0, 1.0])
        assert math.isinf(bound.cutoff)
        assert not bound.is_finite
        bound.offer([3.0])
        assert bound.cutoff == 5.0
        assert bound.is_finite

    def test_cutoff_tightens_with_better_offers(self):
        bound = GlobalBound(2)
        bound.offer([4.0, 3.0, 2.0, 1.0])
        assert bound.cutoff == 2.0

    def test_insertions_counted(self):
        bound = GlobalBound(2)
        bound.offer([1.0, 2.0, 3.0])
        assert bound.insertions == 3


class TestPairwiseBound:
    def test_duplicate_offer_rejected_and_not_counted(self):
        bound = PairwiseBound(2)
        assert bound.offer_pair(1.0, 7, 8)
        assert not bound.offer_pair(1.0, 7, 8)
        assert bound.insertions == 1

    def test_duplicate_offers_cannot_deflate_cutoff(self):
        # k=2 with one real pair offered three times: a plain k-queue
        # would report cutoff 1.0 (two copies of the same pair), below
        # the true 2nd distance.  The pair-keyed bound stays infinite.
        bound = PairwiseBound(2)
        for _ in range(3):
            bound.offer_pair(1.0, 0, 0)
        assert not bound.is_finite
        bound.offer_pair(9.0, 1, 1)
        assert bound.cutoff == 9.0

    def test_distinct_pairs_same_distance_both_count(self):
        bound = PairwiseBound(2)
        assert bound.offer_pair(2.0, 0, 1)
        assert bound.offer_pair(2.0, 1, 0)
        assert bound.cutoff == 2.0
