"""Tests for the hybrid memory/disk main queue."""

import heapq
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.queues.main_queue import MainQueue
from repro.storage.disk import SimulatedDisk


def make_queue(entries: int = 32, rho: float | None = None) -> tuple[MainQueue, SimulatedDisk]:
    disk = SimulatedDisk()
    queue = MainQueue(disk, memory_bytes=48 * entries, rho=rho)
    return queue, disk


class TestValidation:
    def test_bad_memory(self):
        with pytest.raises(ValueError):
            MainQueue(SimulatedDisk(), memory_bytes=0)

    def test_bad_rho(self):
        with pytest.raises(ValueError):
            MainQueue(SimulatedDisk(), memory_bytes=1024, rho=0.0)

    def test_bad_entry_bytes(self):
        with pytest.raises(ValueError):
            MainQueue(SimulatedDisk(), memory_bytes=1024, entry_bytes=0)

    def test_pop_empty_raises(self):
        queue, _ = make_queue()
        with pytest.raises(IndexError):
            queue.pop()


class TestBasics:
    def test_fifo_of_priorities(self):
        queue, _ = make_queue()
        for v in [5.0, 1.0, 3.0]:
            queue.insert(v, f"p{v}")
        assert queue.pop() == (1.0, "p1.0")
        assert queue.peek_key() == 3.0
        assert len(queue) == 2
        assert bool(queue)

    def test_in_memory_until_capacity(self):
        queue, disk = make_queue(entries=16)
        for v in range(16):
            queue.insert(float(v), None)
        assert queue.stats.splits == 0
        assert queue.in_memory_size == 16

    def test_split_on_overflow(self):
        queue, _ = make_queue(entries=8)
        for v in range(20):
            queue.insert(float(v), None)
        assert queue.stats.splits >= 1
        assert queue.segment_count >= 1
        assert queue.check_invariant()

    def test_swap_in_restores_order(self):
        queue, _ = make_queue(entries=8)
        values = [float(v) for v in range(50)]
        random.Random(3).shuffle(values)
        for v in values:
            queue.insert(v, None)
        out = [queue.pop()[0] for _ in range(50)]
        assert out == sorted(values)
        assert queue.stats.swap_ins >= 1

    def test_peak_size_tracked(self):
        queue, _ = make_queue()
        for v in range(10):
            queue.insert(float(v), None)
        for _ in range(10):
            queue.pop()
        assert queue.stats.peak_size == 10
        assert len(queue) == 0 and not queue


class TestBoundarySemantics:
    """The heap/segment boundary is half-open and checked exactly."""

    def test_split_keeps_tie_block_together(self):
        # 9 inserts into an 8-entry heap, all the same key: a naive
        # median split would leave equal keys on both sides of the new
        # memory bound; the half-open rule moves the whole block out.
        queue, _ = make_queue(entries=8)
        for _ in range(9):
            queue.insert(7.0, None)
        assert queue.stats.splits == 1
        assert queue.in_memory_size == 0
        assert queue.check_invariant()
        assert [queue.pop()[0] for _ in range(9)] == [7.0] * 9

    def test_split_ties_never_straddle(self):
        queue, _ = make_queue(entries=8)
        for v in [1.0, 2.0, 3.0, 3.0, 3.0, 3.0, 3.0, 4.0, 5.0]:
            queue.insert(v, None)
        assert queue.stats.splits == 1
        assert queue.check_invariant()
        # Everything >= the boundary key moved out together.
        assert queue.in_memory_size == 2
        out = [queue.pop()[0] for _ in range(9)]
        assert out == sorted([1.0, 2.0, 3.0, 3.0, 3.0, 3.0, 3.0, 4.0, 5.0])

    def test_invariant_is_exact_not_approximate(self):
        # Keys a hair apart must be separated exactly; an isclose-style
        # check would wave a straddling key through.
        queue, _ = make_queue(entries=4)
        base = 10.0
        nudged = math.nextafter(base, math.inf)
        for v in [base, base, nudged, nudged, base]:
            queue.insert(v, None)
        assert queue.check_invariant()
        assert [queue.pop()[0] for _ in range(5)] == sorted(
            [base, base, nudged, nudged, base]
        )

    def test_formula_routing_at_exact_boundaries(self):
        # Distances landing exactly on sqrt(i * n * rho) must go to the
        # segment whose half-open range starts there, for the same
        # boundary values swap-in later uses as the new memory bound.
        queue, _ = make_queue(entries=16, rho=0.25)
        boundaries = [math.sqrt(i * 16 * 0.25) for i in range(1, 6)]
        for b in boundaries:
            queue.insert(b, None)
            assert queue.check_invariant()
        out = [queue.pop()[0] for _ in range(len(boundaries))]
        assert out == sorted(boundaries)


class TestCloseAndContextManager:
    def test_close_empties_queue(self):
        queue, _ = make_queue(entries=8)
        for v in range(40):
            queue.insert(float(v), None)
        queue.close()
        assert len(queue) == 0 and not queue
        assert queue.segment_count == 0
        with pytest.raises(IndexError):
            queue.pop()

    def test_close_idempotent_and_reusable(self):
        queue, _ = make_queue(entries=8)
        queue.insert(1.0, "a")
        queue.close()
        queue.close()
        queue.insert(2.0, "b")
        assert queue.pop() == (2.0, "b")

    def test_context_manager_closes(self):
        with make_queue(entries=8)[0] as queue:
            for v in range(40):
                queue.insert(float(v), None)
        assert len(queue) == 0


class TestRhoBoundaries:
    def test_far_inserts_spill_immediately(self):
        # boundary b1 = sqrt(32 * 1.0) ~ 5.66: distances beyond go to disk
        queue, _ = make_queue(entries=32, rho=1.0)
        queue.insert(100.0, None)
        assert queue.in_memory_size == 0
        assert queue.segment_count == 1
        queue.insert(1.0, None)
        assert queue.in_memory_size == 1

    def test_rho_mode_sorted_output(self):
        queue, _ = make_queue(entries=16, rho=0.5)
        values = [random.Random(7).uniform(0, 500) for _ in range(300)]
        for v in values:
            queue.insert(v, None)
        assert [queue.pop()[0] for _ in range(300)] == sorted(values)

    def test_huge_distances_go_to_tail_segment(self):
        queue, _ = make_queue(entries=8, rho=0.001)
        queue.insert(1e9, "far")
        queue.insert(2e9, "farther")
        assert queue.segment_count == 1  # both in the open-ended tail
        assert queue.pop() == (1e9, "far")


class TestCostAccounting:
    def test_spills_charge_io(self):
        queue, disk = make_queue(entries=8)
        for v in range(500):
            queue.insert(float(v), None)
        assert disk.stats.sequential_write_pages > 0

    def test_swap_ins_charge_reads(self):
        queue, disk = make_queue(entries=8)
        for v in range(100):
            queue.insert(float(v), None)
        before = disk.stats.sequential_read_pages
        for _ in range(100):
            queue.pop()
        assert disk.stats.sequential_read_pages > before

    def test_every_operation_charges_cpu(self):
        queue, disk = make_queue()
        queue.insert(1.0, None)
        queue.pop()
        assert disk.cpu_time > 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.floats(min_value=0, max_value=1000, allow_nan=False)),
        max_size=400,
    ),
    st.sampled_from([None, 0.05, 2.0, 100.0]),
)
def test_interleaved_matches_reference_heap(ops, rho):
    queue, _ = make_queue(entries=8, rho=rho)
    model: list[float] = []
    for is_push, value in ops:
        if is_push or not model:
            queue.insert(value, None)
            heapq.heappush(model, value)
        else:
            assert queue.pop()[0] == heapq.heappop(model)
    assert len(queue) == len(model)
    while model:
        assert queue.pop()[0] == heapq.heappop(model)
