"""A distance join pipelined into a filtering consumer.

The paper's second unknown-k scenario (Section 4.2): a complex query
contains a distance join as a *sub-query* whose output is piped to a
filter, so the number of join results needed depends on the filter's
selectivity and is unknowable in advance.

Here: "find the 20 nearest warehouse-store pairs whose combined
capacity exceeds a threshold".  The incremental join produces pairs in
distance order; the consumer pulls until it has 20 qualifying pairs.

Run:  python examples/pipeline_subquery.py
"""

import random

from repro import JoinConfig, RTree, Rect, incremental_distance_join


def main() -> None:
    rng = random.Random(42)

    warehouses = []
    capacities_w = {}
    for i in range(2_000):
        warehouses.append(
            (Rect.from_point(rng.uniform(0, 200), rng.uniform(0, 200)), i)
        )
        capacities_w[i] = rng.randint(10, 100)

    stores = []
    demands = {}
    for i in range(3_000):
        stores.append(
            (Rect.from_point(rng.uniform(0, 200), rng.uniform(0, 200)), i)
        )
        demands[i] = rng.randint(10, 100)

    warehouse_index = RTree.bulk_load(warehouses)
    store_index = RTree.bulk_load(stores)

    stream = incremental_distance_join(
        warehouse_index, store_index, "amidj", JoinConfig(initial_k=64)
    )

    wanted, qualified, scanned = 20, [], 0
    for pair in stream:
        scanned += 1
        if capacities_w[pair.ref_r] >= demands[pair.ref_s]:
            qualified.append(pair)
            if len(qualified) == wanted:
                break

    print(f"{wanted} nearest warehouse-store pairs where capacity covers demand")
    print(f"(join produced {scanned} pairs; filter selectivity "
          f"{len(qualified) / scanned:.0%})\n")
    for pair in qualified:
        print(f"  warehouse #{pair.ref_r:<5d} (cap {capacities_w[pair.ref_r]:3d})  "
              f"store #{pair.ref_s:<5d} (demand {demands[pair.ref_s]:3d})  "
              f"distance {pair.distance:.3f}")

    s = stream.stats()
    print(f"\nincremental join stats: {s.real_distance_computations:,} distance "
          f"computations, {s.compensation_stages} stage transitions, "
          f"{s.response_time:.3f}s simulated response")


if __name__ == "__main__":
    main()
