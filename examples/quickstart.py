"""Quickstart: the 10 nearest hotel-restaurant pairs.

The paper's motivating query:

    SELECT h.name, r.name
    FROM Hotel h, Restaurant r
    ORDER BY distance(h.location, r.location)
    STOP AFTER 10;

Run:  python examples/quickstart.py
"""

import random

from repro import Rect, RTree, k_distance_join


def main() -> None:
    rng = random.Random(7)

    hotels = [
        (Rect.from_point(rng.uniform(0, 100), rng.uniform(0, 100)), i)
        for i in range(500)
    ]
    restaurants = [
        (Rect.from_point(rng.uniform(0, 100), rng.uniform(0, 100)), i)
        for i in range(800)
    ]

    hotel_index = RTree.bulk_load(hotels)
    restaurant_index = RTree.bulk_load(restaurants)

    top10 = k_distance_join(hotel_index, restaurant_index, k=10)

    print("10 nearest hotel-restaurant pairs:")
    for rank, (distance, hotel, restaurant) in enumerate(top10, start=1):
        print(f"  {rank:2d}. hotel #{hotel:<4d} restaurant #{restaurant:<4d} "
              f"distance {distance:.3f}")

    s = top10.stats
    print(f"\nalgorithm: {s.algorithm} | distance computations: "
          f"{s.real_distance_computations:,} | queue insertions: "
          f"{s.queue_insertions:,} | simulated response: {s.response_time:.3f}s")


if __name__ == "__main__":
    main()
