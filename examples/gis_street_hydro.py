"""GIS workload: nearest street/water pairs on the TIGER-like dataset.

Reproduces the paper's evaluation scenario in miniature — streets joined
against hydrography — and compares all four k-distance-join algorithms
on the paper's three metrics, demonstrating how to read the per-run
statistics.

Run:  python examples/gis_street_hydro.py
"""

from repro import JoinConfig, JoinRunner, RTree
from repro.datagen import synthetic_tiger
from repro.workloads.tables import print_table


def main() -> None:
    print("generating synthetic TIGER-like data (streets x hydrography)...")
    data = synthetic_tiger(n_streets=20_000, n_hydro=7_000)
    streets = RTree.bulk_load(data.streets)
    hydro = RTree.bulk_load(data.hydro)
    print(f"  streets: {streets.size:,} objects, {streets.node_count():,} nodes, "
          f"height {streets.height}")
    print(f"  hydro:   {hydro.size:,} objects, {hydro.node_count():,} nodes, "
          f"height {hydro.height}")

    k = 2_000
    runner = JoinRunner(streets, hydro, JoinConfig())
    rows = []
    for algorithm in ("hs", "bkdj", "amkdj", "sjsort"):
        result = runner.kdj(k, algorithm)
        s = result.stats
        rows.append(
            {
                "algorithm": s.algorithm,
                "dist comps": s.real_distance_computations,
                "queue ins": s.queue_insertions,
                "node accesses": s.node_accesses,
                "response (s)": round(s.response_time, 2),
                "wall (s)": round(s.wall_time, 2),
            }
        )
        farthest = result.results[-1]
        print(f"  {algorithm}: k-th pair = street #{farthest.ref_r} / "
              f"hydro #{farthest.ref_s} at distance {farthest.distance:.2f}")

    print_table(rows, title=f"\n{k} nearest street-water pairs, four algorithms")
    print("\nAll four produce identical results; AM-KDJ does the least work "
          "among the index-driven algorithms (the paper's Figure 10).")


if __name__ == "__main__":
    main()
