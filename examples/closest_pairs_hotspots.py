"""Self-join and k-NN: congestion hotspots within one dataset.

Two extension features working together:

- ``k_self_distance_join`` finds the closest *distinct* pairs inside a
  single dataset (here: delivery depots that crowd each other — merge
  candidates);
- ``RTree.nearest`` answers point k-NN queries (here: which depots
  serve a customer location).

Run:  python examples/closest_pairs_hotspots.py
"""

import random

from repro import RTree, Rect, k_self_distance_join


def main() -> None:
    rng = random.Random(11)
    # Depots concentrate around a few logistics hubs.
    hubs = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(5)]
    depots = []
    for i in range(1_500):
        hx, hy = hubs[rng.randrange(len(hubs))]
        depots.append(
            (Rect.from_point(rng.gauss(hx, 6.0), rng.gauss(hy, 6.0)), i)
        )
    index = RTree.bulk_load(depots)

    print("Top 10 depot pairs that crowd each other (merge candidates):")
    crowding = k_self_distance_join(index, k=10)
    for rank, pair in enumerate(crowding.results, start=1):
        print(f"  {rank:2d}. depot #{pair.ref_r:<5d} and depot #{pair.ref_s:<5d}"
              f"  only {pair.distance:.4f} apart")
    s = crowding.stats
    print(f"  [{s.algorithm}: {s.real_distance_computations:,} distance "
          f"computations for {len(depots) * (len(depots) - 1) // 2:,} "
          "possible pairs]\n")

    customer = (42.0, 58.0)
    print(f"Five depots nearest to customer at {customer}:")
    for distance, depot in index.nearest(*customer, k=5):
        print(f"  depot #{depot:<5d} at distance {distance:.3f}")


if __name__ == "__main__":
    main()
