"""The paper's motivating query, verbatim, through the SQL front-end.

Shows the planner switching engines: AM-KDJ when STOP AFTER is the only
constraint, predicate pushdown + AM-IDJ pipelining when a residual
cross-table filter makes the needed join cardinality unknowable.

Run:  python examples/sql_queries.py
"""

import random

from repro.sql import Database


def main() -> None:
    rng = random.Random(2000)
    hotels = [
        {
            "name": f"Hotel {i:03d}",
            "stars": rng.randint(1, 5),
            "price": rng.randint(60, 400),
            "location": (rng.uniform(0, 40), rng.uniform(0, 40)),
        }
        for i in range(2_000)
    ]
    restaurants = [
        {
            "name": f"Restaurant {i:03d}",
            "cuisine": rng.choice(["thai", "pasta", "bbq", "sushi"]),
            "rating": rng.randint(1, 10),
            "location": (rng.uniform(0, 40), rng.uniform(0, 40)),
        }
        for i in range(3_000)
    ]

    db = Database()
    db.create_table("hotel", hotels)
    db.create_table("restaurant", restaurants)

    queries = [
        # The paper's Section 1 query.
        "SELECT h.name, r.name, distance FROM hotel h, restaurant r "
        "ORDER BY distance(h.location, r.location) STOP AFTER 5;",
        # Pushdown: single-table predicates filter before the join.
        "SELECT h.name, r.name, distance FROM hotel h, restaurant r "
        "WHERE h.stars >= 4 AND r.cuisine = 'sushi' "
        "ORDER BY distance(h.location, r.location) STOP AFTER 5;",
        # Residual predicate: join cardinality unknown, AM-IDJ pipelines.
        "SELECT h.name, r.name, distance FROM hotel h, restaurant r "
        "WHERE r.rating > h.stars AND h.price < 150 "
        "ORDER BY distance(h.location, r.location) STOP AFTER 5;",
    ]

    for text in queries:
        print("=" * 72)
        print(text)
        result = db.query(text)
        for step in result.plan:
            print(f"  plan: {step}")
        for row in result.rows:
            print(f"    {row['h.name']}  <->  {row['r.name']}"
                  f"   ({row['distance']:.3f})")
        s = result.stats
        print(f"  [{s.algorithm}] scanned {result.pairs_scanned} join pairs, "
              f"{s.real_distance_computations:,} distance computations, "
              f"{s.response_time:.3f}s simulated")


if __name__ == "__main__":
    main()
