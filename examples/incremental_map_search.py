"""Interactive-style incremental search (unknown stopping cardinality).

Models the paper's on-line scenario: a user keeps asking for "the next
25 matches" and may say "enough already!" at any time.  AM-IDJ serves
each batch without knowing how many will be requested, estimating and
adaptively correcting its pruning cutoff (eDmax) between stages.

Run:  python examples/incremental_map_search.py
"""

import random

from repro import JoinConfig, RTree, Rect, incremental_distance_join


def make_city(seed: int, n: int, label: str) -> list[tuple[Rect, int]]:
    """Clustered points imitating venues across a city."""
    rng = random.Random(seed)
    centers = [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(6)]
    items = []
    for i in range(n):
        cx, cy = centers[rng.randrange(len(centers))]
        items.append(
            (Rect.from_point(rng.gauss(cx, 3.0), rng.gauss(cy, 3.0)), i)
        )
    return items


def main() -> None:
    cafes = RTree.bulk_load(make_city(1, 3_000, "cafe"))
    bookshops = RTree.bulk_load(make_city(2, 1_200, "bookshop"))

    # batch-size hint = 25: AM-IDJ sizes its first stage for it
    stream = incremental_distance_join(
        cafes, bookshops, "amidj", JoinConfig(initial_k=25)
    )

    total = 0
    for page in range(1, 7):
        batch = stream.next_batch(25)
        total += len(batch)
        nearest, farthest = batch[0], batch[-1]
        s = stream.stats()
        print(f"page {page}: pairs {total - len(batch) + 1}..{total}  "
              f"(distances {nearest.distance:.3f} .. {farthest.distance:.3f})  "
              f"[stages so far: {s.compensation_stages + 1}, "
              f"cumulative response {s.response_time:.3f}s]")

    print(f"\nUser says 'enough already!' after {total} pairs.")
    s = stream.stats()
    print(f"Work done: {s.real_distance_computations:,} distance computations, "
          f"{s.queue_insertions:,} queue insertions — only what those "
          f"{total} answers needed, not a full join.")


if __name__ == "__main__":
    main()
